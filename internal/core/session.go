package core

import (
	"fmt"
	"time"

	"duet/internal/bitmap"
	"duet/internal/pagecache"
)

type taskKind uint8

const (
	blockTask taskKind = iota
	fileTask
)

// Item is one notification returned by Fetch, the (item_id, offset, flag)
// tuple of §3.2. For block tasks ID is a device block number; for file
// tasks it is an inode number and Offset is the byte offset of the page
// within the file.
//
// PageIno/PageIdx identify the page that generated the event. The kernel
// implementation hands tasks the page descriptor; in-kernel tasks like
// the backup tool use it to locate the cached page to copy (§5.2).
type Item struct {
	ID      uint64
	Offset  int64
	Flags   Mask
	PageIno uint64
	PageIdx uint64
}

// DefaultMaxItems bounds the per-session fetch queue; events beyond it
// are dropped (the denial-of-service bound of §4.2).
const DefaultMaxItems = 1 << 20

// Session is one task's registration with Duet.
type Session struct {
	d        *Duet
	id       int
	kind     taskKind
	fsid     pagecache.FSID
	fs       FSAdapter
	root     uint64 // registered directory inode (file tasks)
	mask     Mask
	done     *bitmap.Sparse
	relevant *bitmap.Sparse // file tasks only
	queue    []*itemDesc
	qhead    int
	// MaxItems bounds the fetch queue (events dropped beyond it).
	MaxItems int
	active   bool

	// EventsSeen counts events delivered to (not necessarily queued for)
	// this session.
	EventsSeen int64
	// SuppressedDone counts events filtered because the block or file was
	// marked done — the framework-side filtering §4.1 argues for.
	SuppressedDone int64
	// Dropped counts events discarded due to MaxItems.
	Dropped int64

	// Degraded mode: once the bounded queue overflows the session is
	// lossy — notifications were discarded, so its event stream no longer
	// covers every change. The session records a conservative ID range
	// (blocks for block tasks, inodes for file tasks) covering everything
	// it dropped; the task fetches it with TakeDegradedRange and falls
	// back to scanning that range in its normal order. This keeps the
	// denial-of-service bound of §4.2 without silently losing work.
	lossy  bool
	degSet bool   // a concrete [degLo, degHi] range has been recorded
	degAll bool   // a drop could not be located: the whole ID space is suspect
	degLo  uint64 // lowest dropped ID (inclusive)
	degHi  uint64 // highest dropped ID (inclusive)
}

func (d *Duet) newSession(kind taskKind, fs FSAdapter, root uint64, mask Mask) (*Session, error) {
	slot := -1
	for i := range d.sessions {
		if d.sessions[i] == nil {
			slot = i
			break
		}
	}
	if slot == -1 {
		return nil, fmt.Errorf("%w (max %d)", ErrTooManySessions, MaxSessions)
	}
	s := &Session{
		d:        d,
		id:       slot,
		kind:     kind,
		fsid:     fs.FSID(),
		fs:       fs,
		root:     root,
		mask:     mask,
		done:     bitmap.New(),
		MaxItems: DefaultMaxItems,
		active:   true,
	}
	if kind == fileTask {
		s.relevant = bitmap.New()
	}
	d.sessions[slot] = s
	d.active = append(d.active, s)
	d.refreshGlobalMask()
	d.ensureTable()
	// Registration scan (§4.1): initialize descriptors from the pages
	// already cached, so the task can exploit them immediately and state
	// notifications start from the truth.
	d.cache.Iterate(func(pg *pagecache.Page) bool {
		if pg.Key.FS != s.fsid {
			return true
		}
		s.deliver(pagecache.EventAdded, pg.Key, pg.Dirty)
		if pg.Dirty {
			s.deliver(pagecache.EventDirtied, pg.Key, true)
		}
		return true
	})
	return s, nil
}

// RegisterBlock starts a block-task session over a filesystem's device.
// The task receives items keyed by block number for all file pages on the
// device, translated through FIBMAP (§4.2).
func (d *Duet) RegisterBlock(fs FSAdapter, mask Mask) (*Session, error) {
	if _, ok := d.fses[fs.FSID()]; !ok {
		return nil, fmt.Errorf("%w: fs %d", ErrUnknownFS, fs.FSID())
	}
	return d.newSession(blockTask, fs, 0, mask)
}

// RegisterFile starts a file-task session over the directory rootIno. The
// task receives items for files and directories within it (§3.2).
func (d *Duet) RegisterFile(fs FSAdapter, rootIno uint64, mask Mask) (*Session, error) {
	if _, ok := d.fses[fs.FSID()]; !ok {
		return nil, fmt.Errorf("%w: fs %d", ErrUnknownFS, fs.FSID())
	}
	if !fs.IsDir(rootIno) {
		return nil, fmt.Errorf("%w: inode %d", ErrNotDir, rootIno)
	}
	return d.newSession(fileTask, fs, rootIno, mask)
}

// Close ends the session and releases all its state (duet_deregister).
func (s *Session) Close() error {
	if !s.active {
		return ErrNoSession
	}
	s.active = false
	d := s.d
	d.sessions[s.id] = nil
	for i, a := range d.active {
		if a == s {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	d.refreshGlobalMask()
	// Drop queued references and free descriptors nobody else needs.
	for _, desc := range s.queue[s.qhead:] {
		if desc == nil {
			continue
		}
		desc.queued &^= 1 << uint(s.id)
		desc.flags[s.id] = 0
		d.maybeFree(desc)
	}
	s.queue, s.qhead = nil, 0
	s.done.Clear()
	if s.relevant != nil {
		s.relevant.Clear()
	}
	return nil
}

// Active reports whether the session is open.
func (s *Session) Active() bool { return s.active }

// ID returns the session slot (0..MaxSessions-1), the paper's session id.
func (s *Session) ID() int { return s.id }

// Mask returns the notification mask.
func (s *Session) Mask() Mask { return s.mask }

// QueueLen returns the number of descriptors waiting to be fetched.
func (s *Session) QueueLen() int { return len(s.queue) - s.qhead }

// deliver processes one page event for this session (§4.1: check
// interest, relevance and done status, then update the descriptor).
func (s *Session) deliver(ev pagecache.EventType, key pagecache.PageKey, dirty bool) {
	if !s.active || key.FS != s.fsid {
		return
	}
	s.EventsSeen++
	// Relevance and done filtering.
	if s.kind == blockTask {
		blk, mapped := s.fs.Fibmap(key.Ino, key.Index)
		// An unmapped page (no block assigned yet — the delayed-allocation
		// case of §4.2) is left for a later event to report.
		if mapped && s.done.Test(uint64(blk)) {
			s.SuppressedDone++
			return
		}
		if !mapped && ev != pagecache.EventAdded && ev != pagecache.EventDirtied {
			return
		}
	} else {
		if s.done.Test(key.Ino) {
			s.SuppressedDone++
			return
		}
		if !s.relevant.Test(key.Ino) {
			if _, ok := s.fs.Within(key.Ino, s.root); !ok {
				// Not under the registered directory: mark done so future
				// events are filtered by the cheap bitmap test (§4.1).
				s.done.Set(key.Ino)
				return
			}
			s.relevant.Set(key.Ino)
		}
	}

	d := s.d
	desc := d.ensureTable().getOrCreate(itemKey{key.FS, key.Ino, key.Index}, &d.stats)
	f := desc.flags[s.id]

	// Update current state bits.
	switch ev {
	case pagecache.EventAdded:
		f |= fCurExists
		if dirty {
			f |= fCurModif
		}
	case pagecache.EventRemoved:
		f &^= fCurExists | fCurModif
	case pagecache.EventDirtied:
		f |= fCurExists | fCurModif
	case pagecache.EventFlushed:
		f &^= fCurModif
	}
	// Accumulate the raw event bit if subscribed.
	evBit := eventBit(ev)
	f |= uint8(s.mask) & evBit

	desc.flags[s.id] = f
	if pendingFor(f, s.mask) {
		s.enqueue(desc)
	} else if desc.queued&(1<<uint(s.id)) == 0 {
		d.maybeFree(desc)
	}
}

func eventBit(ev pagecache.EventType) uint8 {
	switch ev {
	case pagecache.EventAdded:
		return uint8(EvtAdded)
	case pagecache.EventRemoved:
		return uint8(EvtRemoved)
	case pagecache.EventDirtied:
		return uint8(EvtDirtied)
	case pagecache.EventFlushed:
		return uint8(EvtFlushed)
	}
	return 0
}

// enqueue puts the descriptor on the session's fetch queue, dropping the
// pending information when the queue is at its limit.
func (s *Session) enqueue(desc *itemDesc) {
	bit := uint32(1) << uint(s.id)
	if desc.queued&bit != 0 {
		return
	}
	if s.QueueLen() >= s.MaxItems {
		// Drop: discard pending info but keep state truth, pretending it
		// was reported. The session turns lossy and records where the
		// loss happened so the task can re-scan (degraded-mode protocol).
		s.Dropped++
		s.d.stats.EventsDropped++
		s.noteDrop(desc)
		f := desc.flags[s.id]
		f &= ^uint8(fEventBits)
		cur := (f >> curShift) & twoStateBit
		f = (f &^ (twoStateBit << repShift)) | cur<<repShift
		desc.flags[s.id] = f
		s.d.maybeFree(desc)
		return
	}
	desc.queued |= bit
	s.queue = append(s.queue, desc)
	if s.d.obs != nil {
		s.d.observeEnqueue(s)
	}
}

// noteDrop records a queue-overflow drop for the degraded-mode protocol,
// widening the suspect ID range to cover the dropped notification.
func (s *Session) noteDrop(desc *itemDesc) {
	if !s.lossy {
		s.lossy = true
		s.d.stats.DegradedSessions++
		if s.d.obs != nil {
			s.d.observeDegraded()
		}
	}
	var id uint64
	if s.kind == blockTask {
		blk, mapped := s.fs.Fibmap(desc.key.ino, desc.key.idx)
		if !mapped {
			// Delayed allocation: the page will land at an unknown block,
			// so no finite range covers the loss.
			s.degAll = true
			return
		}
		id = uint64(blk)
	} else {
		id = desc.key.ino
	}
	if s.degAll {
		return
	}
	if !s.degSet {
		s.degSet = true
		s.degLo, s.degHi = id, id
		return
	}
	if id < s.degLo {
		s.degLo = id
	}
	if id > s.degHi {
		s.degHi = id
	}
}

// Degraded reports whether the session has dropped notifications since
// the last TakeDegradedRange.
func (s *Session) Degraded() bool { return s.lossy }

// TakeDegradedRange consumes the degraded state, returning the inclusive
// ID range the task must re-scan to compensate for dropped
// notifications. For block tasks the range is in device blocks; for file
// tasks, in inode numbers. When a drop could not be attributed to a
// finite range the whole ID space is returned. ok is false when the
// session is not degraded.
func (s *Session) TakeDegradedRange() (lo, hi uint64, ok bool) {
	if !s.lossy {
		return 0, 0, false
	}
	if s.degAll {
		lo, hi = 0, ^uint64(0)
	} else {
		lo, hi = s.degLo, s.degHi
	}
	s.lossy, s.degSet, s.degAll, s.degLo, s.degHi = false, false, false, 0, 0
	return lo, hi, true
}

// FetchInto retrieves pending notifications into buf, returning how many
// were written — the duet_fetch call (§3.2). Items whose file or block
// has been marked done since queuing are silently consumed.
func (s *Session) FetchInto(buf []Item) int {
	if !s.active || len(buf) == 0 {
		return 0
	}
	d := s.d
	var t0 time.Time
	if d.MeasureCPU {
		t0 = time.Now()
	}
	d.stats.FetchCalls++
	n := 0
	bit := uint32(1) << uint(s.id)
	for n < len(buf) && s.qhead < len(s.queue) {
		desc := s.queue[s.qhead]
		s.queue[s.qhead] = nil
		s.qhead++
		desc.queued &^= bit
		if s.qhead == len(s.queue) {
			s.queue, s.qhead = s.queue[:0], 0
		}

		f := desc.flags[s.id]
		item, ok := s.buildItem(desc, f)
		// Mark up-to-date: clear events, report current state.
		nf := f & ^uint8(fEventBits)
		cur := (nf >> curShift) & twoStateBit
		nf = (nf &^ (twoStateBit << repShift)) | cur<<repShift
		desc.flags[s.id] = nf
		d.maybeFree(desc)
		if !ok {
			continue
		}
		buf[n] = item
		n++
	}
	d.stats.ItemsFetched += int64(n)
	if d.MeasureCPU {
		d.stats.FetchNanos += time.Since(t0).Nanoseconds()
	}
	return n
}

// Fetch is a convenience wrapper returning up to max items.
func (s *Session) Fetch(max int) []Item {
	buf := make([]Item, max)
	n := s.FetchInto(buf)
	return buf[:n]
}

// buildItem converts a descriptor into a fetch item, re-checking done and
// relevance (they may have changed since queuing).
func (s *Session) buildItem(desc *itemDesc, f uint8) (Item, bool) {
	flags := Mask(f&fEventBits) & s.mask
	// State notification: include current state bits when they changed.
	st := uint8(s.mask>>4) & twoStateBit
	cur := (f >> curShift) & twoStateBit
	rep := (f >> repShift) & twoStateBit
	if (cur^rep)&st != 0 {
		flags |= Mask((cur&st)<<4) | stChangedMark
	}
	if flags == 0 {
		return Item{}, false
	}
	flags &^= stChangedMark

	it := Item{
		Flags:   flags,
		PageIno: desc.key.ino,
		PageIdx: desc.key.idx,
	}
	if s.kind == blockTask {
		blk, mapped := s.fs.Fibmap(desc.key.ino, desc.key.idx)
		if !mapped || s.done.Test(uint64(blk)) {
			return Item{}, false
		}
		it.ID = uint64(blk)
		it.Offset = int64(desc.key.idx) * pageSize
	} else {
		if s.done.Test(desc.key.ino) {
			return Item{}, false
		}
		it.ID = desc.key.ino
		it.Offset = int64(desc.key.idx) * pageSize
	}
	return it, true
}

// pageSize is the byte size of a page/block (item offsets are in bytes).
const pageSize = 4096

// stChangedMark is an internal marker (never returned) so that a state
// change to the all-clear state still yields an item.
const stChangedMark Mask = 1 << 7

// CheckDone reports whether the item has been marked processed
// (duet_check_done). For block tasks id is a block number; for file
// tasks, an inode number.
func (s *Session) CheckDone(id uint64) bool { return s.done.Test(id) }

// SetDone marks an item processed (duet_set_done): its descriptors are
// marked up-to-date and future events for it are suppressed (§4.1).
func (s *Session) SetDone(id uint64) {
	if !s.done.Set(id) {
		return
	}
	if s.kind == fileTask {
		// Eagerly mark the file's descriptors up-to-date.
		if m := s.d.table.byFile.get(fileKey{s.fsid, id}); m != nil {
			idxs := make([]uint64, 0, len(m))
			for idx := range m {
				idxs = append(idxs, idx)
			}
			sortUint64(idxs)
			for _, idx := range idxs {
				desc := m[idx]
				f := desc.flags[s.id]
				f &= ^uint8(fEventBits)
				cur := (f >> curShift) & twoStateBit
				f = (f &^ (twoStateBit << repShift)) | cur<<repShift
				desc.flags[s.id] = f
				s.d.maybeFree(desc)
			}
		}
	}
	// Block-task descriptors are filtered lazily at fetch time.
}

// UnsetDone re-enables tracking for an item (duet_unset_done) — e.g. the
// scrubber unmarks a block when it is re-dirtied (§5.1).
func (s *Session) UnsetDone(id uint64) { s.done.Unset(id) }

// DoneCount returns the number of done-marked items.
func (s *Session) DoneCount() uint64 { return s.done.Count() }

// GetPath translates an inode into a path relative to the registered
// directory (duet_get_path). As in §3.2, it fails when the file has no
// cached pages — the truth check that lets tasks back out of opportunistic
// work that is no longer worthwhile — or when the file has left the
// registered directory.
func (s *Session) GetPath(ino uint64) (string, error) {
	if !s.active {
		return "", ErrNoSession
	}
	if s.kind != fileTask {
		return "", fmt.Errorf("duet: GetPath on a block task session")
	}
	if s.d.cache.FilePages(s.fsid, ino) == 0 {
		return "", fmt.Errorf("%w: inode %d", ErrNotCached, ino)
	}
	rel, ok := s.fs.Within(ino, s.root)
	if !ok {
		return "", fmt.Errorf("%w: inode %d outside registered directory", ErrNotCached, ino)
	}
	return rel, nil
}

// --- move handling ---------------------------------------------------------

func (s *Session) handleMove(ino uint64, isDir bool, oldParent, newParent uint64) {
	_, wasInOld := s.fs.Within(oldParent, s.root)
	_, nowIn := s.fs.Within(ino, s.root)
	if isDir {
		if wasInOld || nowIn {
			s.resetBitmapsForRename()
		}
		return
	}
	wasTracked := s.relevant.Test(ino)
	switch {
	case !wasTracked && nowIn:
		// Moved in: initialize descriptors from cached pages, like the
		// registration scan (§4.1).
		s.done.Unset(ino)
		s.relevant.Set(ino)
		s.d.cache.IterateFile(s.fsid, ino, func(pg *pagecache.Page) bool {
			s.deliver(pagecache.EventAdded, pg.Key, pg.Dirty)
			if pg.Dirty {
				s.deliver(pagecache.EventDirtied, pg.Key, true)
			}
			return true
		})
	case wasTracked && !nowIn:
		// Moved out: emit Removed/¬Exists for all the file's pages and
		// stop tracking it (§4.1).
		if m := s.d.table.byFile.get(fileKey{s.fsid, ino}); m != nil {
			idxs := make([]uint64, 0, len(m))
			for idx := range m {
				idxs = append(idxs, idx)
			}
			sortUint64(idxs)
			for _, idx := range idxs {
				desc := m[idx]
				f := desc.flags[s.id]
				f &^= fCurExists | fCurModif
				f |= uint8(s.mask) & uint8(EvtRemoved)
				desc.flags[s.id] = f
				if pendingFor(f, s.mask) {
					s.enqueue(desc)
				}
			}
		}
		s.d.cache.IterateFile(s.fsid, ino, func(pg *pagecache.Page) bool {
			s.deliver(pagecache.EventRemoved, pg.Key, false)
			return true
		})
		s.relevant.Unset(ino)
		// Future events re-check containment and mark the file done.
	}
}

// resetBitmapsForRename implements the paper's directory-rename rule:
// "resetting the relevant and done bitmaps for all files other than the
// files that have already been processed, i.e. have both bits set"
// (§4.1). Avoids traversing the renamed directory; relevance is
// re-checked when files are accessed again.
func (s *Session) resetBitmapsForRename() {
	var clearRel, clearDone []uint64
	s.relevant.IterateSet(func(ino uint64) bool {
		if !s.done.Test(ino) {
			clearRel = append(clearRel, ino)
		}
		return true
	})
	s.done.IterateSet(func(ino uint64) bool {
		if !s.relevant.Test(ino) {
			clearDone = append(clearDone, ino)
		}
		return true
	})
	for _, ino := range clearRel {
		s.relevant.Unset(ino)
	}
	for _, ino := range clearDone {
		s.done.Unset(ino)
	}
}

func sortUint64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
