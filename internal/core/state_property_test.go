package core

import (
	"testing"
	"testing/quick"

	"duet/internal/cowfs"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Property test for the state-notification semantics of Table 2: for any
// sequence of page-cache operations on one page, interleaved with
// fetches, a state-subscribed session must
//
//  1. deliver an item exactly when the page's (exists, modified) state
//     differs from the state at the previous fetch (cancellation), and
//  2. report the *current* state in the item's flag bits.
//
// The reference model below tracks the page state directly.

type pageOp uint8

const (
	opRead  pageOp = iota // bring the page in (hit or miss)
	opWrite               // dirty it
	opSync                // flush dirty pages
	opEvict               // reclaim the page (clean eviction: flush first)
	opFetch               // task fetches
)

func TestQuickStateNotificationSemantics(t *testing.T) {
	f := func(rawOps []uint8) bool {
		e := sim.New(1)
		disk := storage.NewDisk(e, "sda", storage.DefaultSSD(1<<12), newFIFO())
		cache := pagecache.New(e, pagecache.DefaultConfig(64))
		fs := cowfs.New(e, 1, disk, cache)
		d := New(cache)
		ad := AttachCow(d, fs)

		file, err := fs.PopulateFile("/f", 1, 1, e.DeriveRand("pop"))
		if err != nil {
			return false
		}
		ok := true
		e.Go("drive", func(p *sim.Proc) {
			defer e.Stop()
			sess, err := d.RegisterBlock(ad, StExists|StModified)
			if err != nil {
				ok = false
				return
			}
			// Model state.
			exists, modified := false, false
			repExists, repModified := false, false

			apply := func(op pageOp) {
				switch op {
				case opRead:
					if err := fs.ReadFile(p, file.Ino, storage.ClassNormal, "w"); err != nil {
						ok = false
						return
					}
					exists = true
				case opWrite:
					if err := fs.Write(p, file.Ino, 0, 1); err != nil {
						ok = false
						return
					}
					exists, modified = true, true
				case opSync:
					fs.Sync(p)
					if exists {
						modified = false
					}
				case opEvict:
					// Reclaim evicts clean pages; a dirty page is written
					// back first (dropping dirty data would lose the write,
					// which the checksum layer would then rightly flag).
					fs.Sync(p)
					if exists {
						modified = false
					}
					cache.RemoveFile(fs.ID(), uint64(file.Ino))
					exists, modified = false, false
				case opFetch:
					items := sess.Fetch(16)
					changed := exists != repExists || modified != repModified
					if changed {
						if len(items) != 1 {
							ok = false
							return
						}
						it := items[0]
						if it.Flags.Has(StExists) != exists || it.Flags.Has(StModified) != modified {
							ok = false
							return
						}
					} else if len(items) != 0 {
						ok = false
						return
					}
					repExists, repModified = exists, modified
				}
			}
			for _, raw := range rawOps {
				apply(pageOp(raw % 5))
				if !ok {
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// fifoSched is a minimal scheduler so this white-box test does not import
// internal/iosched (which would be fine, but keeps the test self-reliant).
func newFIFO() storage.Scheduler { return fifoSched{q: &[]*storage.Request{}} }

type fifoSched struct{ q *[]*storage.Request }

func (s fifoSched) Name() string           { return "fifo-test" }
func (s fifoSched) Add(r *storage.Request) { *s.q = append(*s.q, r) }
func (s fifoSched) Pending() int           { return len(*s.q) }
func (s fifoSched) Dispatch(_, _ sim.Time) (*storage.Request, sim.Time) {
	if len(*s.q) == 0 {
		return nil, 0
	}
	r := (*s.q)[0]
	*s.q = (*s.q)[1:]
	return r, 0
}
