package core

// Flat open-addressed hash tables for the descriptor table's two
// indexes, mirroring internal/pagecache/flattab.go: the runtime map's
// generic struct-key hashing showed up at the top of full-run CPU
// profiles, and every page event performs at least one descriptor
// lookup. Linear probing with backward-shift deletion; a slot is
// occupied iff its value is non-nil.

const descTabMinSize = 256

// descHashMix is the MurmurHash3 64-bit finalizer (see pagecache).
func descHashMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (k itemKey) hash() uint64 {
	return descHashMix(uint64(k.fs)*0x9e3779b97f4a7c15 ^ k.ino*0xbf58476d1ce4e5b9 ^ k.idx)
}

func (k fileKey) hash() uint64 {
	return descHashMix(uint64(k.fs)*0x9e3779b97f4a7c15 ^ k.ino)
}

// descTab maps itemKey -> *itemDesc.
type descTab struct {
	keys []itemKey
	vals []*itemDesc
	n    int
}

func (t *descTab) get(k itemKey) *itemDesc {
	if t.n == 0 {
		return nil
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == nil {
			return nil
		}
		if t.keys[i] == k {
			return v
		}
	}
}

func (t *descTab) put(k itemKey, v *itemDesc) {
	if t.n >= len(t.vals)-len(t.vals)/4 {
		t.grow()
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if t.vals[i] == nil {
			t.keys[i], t.vals[i] = k, v
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

func (t *descTab) del(k itemKey) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.vals) - 1)
	i := k.hash() & mask
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.keys[i] = itemKey{}
		t.vals[i] = nil
		for {
			j = (j + 1) & mask
			if t.vals[j] == nil {
				t.n--
				return
			}
			h := t.keys[j].hash() & mask
			if (j-h)&mask >= (j-i)&mask {
				break
			}
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
}

func (t *descTab) grow() {
	size := descTabMinSize
	if len(t.vals) > 0 {
		size = len(t.vals) * 2
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]itemKey, size)
	t.vals = make([]*itemDesc, size)
	t.n = 0
	for i, v := range oldVals {
		if v != nil {
			t.put(oldKeys[i], v)
		}
	}
}

// fdescTab maps fileKey -> the file's per-index descriptor map.
type fdescTab struct {
	keys []fileKey
	vals []map[uint64]*itemDesc
	n    int
}

func (t *fdescTab) get(k fileKey) map[uint64]*itemDesc {
	if t.n == 0 {
		return nil
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == nil {
			return nil
		}
		if t.keys[i] == k {
			return v
		}
	}
}

func (t *fdescTab) put(k fileKey, v map[uint64]*itemDesc) {
	if t.n >= len(t.vals)-len(t.vals)/4 {
		t.grow()
	}
	mask := uint64(len(t.vals) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if t.vals[i] == nil {
			t.keys[i], t.vals[i] = k, v
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

func (t *fdescTab) del(k fileKey) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.vals) - 1)
	i := k.hash() & mask
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.keys[i] = fileKey{}
		t.vals[i] = nil
		for {
			j = (j + 1) & mask
			if t.vals[j] == nil {
				t.n--
				return
			}
			h := t.keys[j].hash() & mask
			if (j-h)&mask >= (j-i)&mask {
				break
			}
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
}

func (t *fdescTab) grow() {
	size := descTabMinSize
	if len(t.vals) > 0 {
		size = len(t.vals) * 2
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]fileKey, size)
	t.vals = make([]map[uint64]*itemDesc, size)
	t.n = 0
	for i, v := range oldVals {
		if v != nil {
			t.put(oldKeys[i], v)
		}
	}
}
