package core

import (
	"errors"
	"math/rand"
	"testing"

	"duet/internal/cowfs"
	"duet/internal/iosched"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

const testBlocks = 1 << 16

type env struct {
	e     *sim.Engine
	disk  *storage.Disk
	cache *pagecache.Cache
	fs    *cowfs.FS
	d     *Duet
	ad    *CowAdapter
}

func newEnv(cachePages int) *env {
	e := sim.New(1)
	disk := storage.NewDisk(e, "sda", storage.DefaultHDD(testBlocks), iosched.NewCFQ())
	cache := pagecache.New(e, pagecache.DefaultConfig(cachePages))
	fs := cowfs.New(e, 1, disk, cache)
	d := New(cache)
	ad := AttachCow(d, fs)
	return &env{e: e, disk: disk, cache: cache, fs: fs, d: d, ad: ad}
}

func (v *env) in(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	v.e.Go("test", func(p *sim.Proc) {
		// Stop via defer so a t.Fatal inside fn still ends the run.
		defer v.e.Stop()
		fn(p)
	})
	if err := v.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func (v *env) mustPopulate(t *testing.T, path string, pages int64) *cowfs.Inode {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(len(path))))
	f, err := v.fs.PopulateFile(path, pages, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func drain(s *Session) []Item {
	var out []Item
	for {
		items := s.Fetch(64)
		if len(items) == 0 {
			return out
		}
		out = append(out, items...)
	}
}

func TestRegisterLimits(t *testing.T) {
	v := newEnv(256)
	var sessions []*Session
	for i := 0; i < MaxSessions; i++ {
		s, err := v.d.RegisterBlock(v.ad, EvtAdded)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		sessions = append(sessions, s)
	}
	if _, err := v.d.RegisterBlock(v.ad, EvtAdded); !errors.Is(err, ErrTooManySessions) {
		t.Errorf("17th register: %v", err)
	}
	// Closing one frees a slot.
	if err := sessions[3].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.d.RegisterBlock(v.ad, EvtAdded); err != nil {
		t.Errorf("register after close: %v", err)
	}
	if err := sessions[3].Close(); !errors.Is(err, ErrNoSession) {
		t.Errorf("double close: %v", err)
	}
}

func TestRegisterFileNeedsDir(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/file", 4)
	if _, err := v.d.RegisterFile(v.ad, uint64(f.Ino), EvtAdded); !errors.Is(err, ErrNotDir) {
		t.Errorf("register on file: %v", err)
	}
}

func TestBlockTaskAddedEvents(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 8)
	v.in(t, func(p *sim.Proc) {
		s, err := v.d.RegisterBlock(v.ad, EvtAdded|EvtDirtied)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 8 {
			t.Fatalf("items = %d, want 8", len(items))
		}
		seen := map[uint64]bool{}
		for _, it := range items {
			if !it.Flags.Has(EvtAdded) {
				t.Errorf("item %+v missing Added", it)
			}
			blk, ok := v.fs.Fibmap(f.Ino, int64(it.PageIdx))
			if !ok || uint64(blk) != it.ID {
				t.Errorf("item ID %d != fibmap %d", it.ID, blk)
			}
			seen[it.ID] = true
		}
		if len(seen) != 8 {
			t.Errorf("distinct blocks = %d", len(seen))
		}
		// Nothing pending: descriptors freed (event-only session).
		if v.d.Stats().CurDescs != 0 {
			t.Errorf("CurDescs = %d after drain", v.d.Stats().CurDescs)
		}
	})
}

func TestDirtiedAndFlushedEvents(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 4)
	v.in(t, func(p *sim.Proc) {
		s, err := v.d.RegisterBlock(v.ad, EvtDirtied|EvtFlushed)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.fs.Write(p, f.Ino, 0, 2); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		// Writes dirty 2 pages (Added events are filtered by the mask).
		dirtied := 0
		for _, it := range items {
			if it.Flags.Has(EvtDirtied) {
				dirtied++
			}
		}
		if dirtied != 2 {
			t.Errorf("dirtied items = %d, want 2", dirtied)
		}
		v.fs.Sync(p)
		items = drain(s)
		flushed := 0
		for _, it := range items {
			if it.Flags.Has(EvtFlushed) {
				flushed++
			}
		}
		if flushed != 2 {
			t.Errorf("flushed items = %d, want 2", flushed)
		}
	})
}

func TestEventAccumulationAcrossFetches(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 1)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, EventBits)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		items := drain(s) // consumes Added
		if len(items) != 1 || !items[0].Flags.Has(EvtAdded) {
			t.Fatalf("first fetch = %+v", items)
		}
		// Now remove the page; next fetch must report only Removed
		// (the paper's §3.2 example).
		v.cache.RemoveFile(1, uint64(f.Ino))
		items = drain(s)
		if len(items) != 1 {
			t.Fatalf("second fetch = %+v", items)
		}
		if items[0].Flags != EvtRemoved {
			t.Errorf("flags = %v, want only Removed", items[0].Flags)
		}
	})
}

func TestStateExistsCancellation(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 1)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, StExists)
		// Page added and removed between fetches: state reverted, no item
		// (Table 2 semantics).
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		v.cache.RemoveFile(1, uint64(f.Ino))
		if items := drain(s); len(items) != 0 {
			t.Errorf("cancelled state change still delivered: %+v", items)
		}
		// Add again: one Exists notification.
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 1 || !items[0].Flags.Has(StExists) {
			t.Fatalf("exists notification = %+v", items)
		}
		// Remove: a state-change item with Exists cleared.
		v.cache.RemoveFile(1, uint64(f.Ino))
		items = drain(s)
		if len(items) != 1 || items[0].Flags.Has(StExists) {
			t.Fatalf("not-exists notification = %+v", items)
		}
	})
}

func TestStateModified(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 1)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, StModified)
		if err := v.fs.Write(p, f.Ino, 0, 1); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 1 || !items[0].Flags.Has(StModified) {
			t.Fatalf("modified notification = %+v", items)
		}
		// Dirty + flush between fetches cancels.
		if err := v.fs.Write(p, f.Ino, 0, 1); err != nil {
			t.Fatal(err)
		}
		v.fs.Sync(p)
		// After the first write the page was reported modified. Writing
		// again and syncing leaves it clean: one notification (modified ->
		// clean).
		items = drain(s)
		if len(items) != 1 || items[0].Flags.Has(StModified) {
			t.Fatalf("clean notification = %+v", items)
		}
	})
}

func TestRegistrationScanSeedsExistingPages(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 6)
	v.in(t, func(p *sim.Proc) {
		// Cache pages BEFORE registering.
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		s, _ := v.d.RegisterBlock(v.ad, StExists)
		items := drain(s)
		if len(items) != 6 {
			t.Fatalf("scan items = %d, want 6", len(items))
		}
		for _, it := range items {
			if !it.Flags.Has(StExists) {
				t.Errorf("scan item %+v missing Exists", it)
			}
		}
	})
}

func TestSetDoneSuppressesEvents(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 4)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, EvtAdded)
		blk, _ := v.fs.Fibmap(f.Ino, 0)
		s.SetDone(uint64(blk))
		if !s.CheckDone(uint64(blk)) {
			t.Error("CheckDone false after SetDone")
		}
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 3 {
			t.Fatalf("items = %d, want 3 (one block done)", len(items))
		}
		for _, it := range items {
			if it.ID == uint64(blk) {
				t.Error("done block delivered")
			}
		}
		// UnsetDone resumes tracking.
		s.UnsetDone(uint64(blk))
		v.cache.RemoveFile(1, uint64(f.Ino))
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		items = drain(s)
		if len(items) != 4 {
			t.Errorf("items after unset = %d, want 4", len(items))
		}
	})
}

func TestFileTaskRelevance(t *testing.T) {
	v := newEnv(256)
	v.fs.MkdirAll("/data")
	v.fs.MkdirAll("/other")
	fin := v.mustPopulate(t, "/data/in", 3)
	fout := v.mustPopulate(t, "/other/out", 3)
	data, _ := v.fs.Lookup("/data")
	v.in(t, func(p *sim.Proc) {
		s, err := v.d.RegisterFile(v.ad, uint64(data.Ino), StExists)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.fs.ReadFile(p, fin.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.ReadFile(p, fout.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 3 {
			t.Fatalf("items = %d, want 3 (only /data file)", len(items))
		}
		for _, it := range items {
			if it.ID != uint64(fin.Ino) {
				t.Errorf("item for wrong inode %d", it.ID)
			}
			if it.Offset != int64(it.PageIdx)*4096 {
				t.Errorf("offset %d != pageIdx*4096", it.Offset)
			}
		}
		// The outside file was marked done (irrelevant).
		if !s.CheckDone(uint64(fout.Ino)) {
			t.Error("irrelevant file not done-marked")
		}
	})
}

func TestFileTaskSetDone(t *testing.T) {
	v := newEnv(256)
	v.fs.MkdirAll("/data")
	f := v.mustPopulate(t, "/data/f", 4)
	data, _ := v.fs.Lookup("/data")
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterFile(v.ad, uint64(data.Ino), StExists)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		s.SetDone(uint64(f.Ino))
		if items := drain(s); len(items) != 0 {
			t.Errorf("done file delivered %d items", len(items))
		}
		// Further events are suppressed too.
		v.cache.RemoveFile(1, uint64(f.Ino))
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if items := drain(s); len(items) != 0 {
			t.Errorf("events for done file delivered: %d", len(items))
		}
	})
}

func TestGetPath(t *testing.T) {
	v := newEnv(256)
	v.fs.MkdirAll("/data/sub")
	f := v.mustPopulate(t, "/data/sub/f", 2)
	data, _ := v.fs.Lookup("/data")
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterFile(v.ad, uint64(data.Ino), StExists)
		// Not cached yet: the truth check fails.
		if _, err := s.GetPath(uint64(f.Ino)); !errors.Is(err, ErrNotCached) {
			t.Errorf("GetPath uncached: %v", err)
		}
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		path, err := s.GetPath(uint64(f.Ino))
		if err != nil || path != "sub/f" {
			t.Errorf("GetPath = %q, %v", path, err)
		}
	})
}

func TestFibmapBridgeAcrossInodes(t *testing.T) {
	// The same physical block reached via a snapshot file must hit the
	// same done bit: backup reads benefit the scrubber and vice versa.
	v := newEnv(256)
	v.fs.MkdirAll("/data")
	f := v.mustPopulate(t, "/data/f", 4)
	v.in(t, func(p *sim.Proc) {
		snap, err := v.fs.CreateSnapshot(p, "/data", "/snap")
		if err != nil {
			t.Fatal(err)
		}
		s, _ := v.d.RegisterBlock(v.ad, EvtAdded)
		snapIno := snap.LiveToSnap[f.Ino]
		// Read via the snapshot inode.
		if err := v.fs.ReadFile(p, cowfs.Ino(snapIno), storage.ClassIdle, "backup"); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 4 {
			t.Fatalf("items = %d", len(items))
		}
		for _, it := range items {
			liveBlk, _ := v.fs.Fibmap(f.Ino, int64(it.PageIdx))
			if it.ID != uint64(liveBlk) {
				t.Errorf("snapshot-read block %d != live block %d (should be shared)", it.ID, liveBlk)
			}
		}
	})
}

func TestMoveInInitializesDescriptors(t *testing.T) {
	v := newEnv(256)
	v.fs.MkdirAll("/data")
	v.fs.MkdirAll("/outside")
	f := v.mustPopulate(t, "/outside/f", 3)
	data, _ := v.fs.Lookup("/data")
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterFile(v.ad, uint64(data.Ino), StExists)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if items := drain(s); len(items) != 0 {
			t.Fatalf("outside file delivered %d items", len(items))
		}
		if err := v.fs.Rename("/outside/f", "/data/f"); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 3 {
			t.Fatalf("move-in items = %d, want 3", len(items))
		}
		for _, it := range items {
			if !it.Flags.Has(StExists) {
				t.Errorf("move-in item %+v missing Exists", it)
			}
		}
	})
}

func TestMoveOutEmitsRemoved(t *testing.T) {
	v := newEnv(256)
	v.fs.MkdirAll("/data")
	v.fs.MkdirAll("/outside")
	f := v.mustPopulate(t, "/data/f", 3)
	data, _ := v.fs.Lookup("/data")
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterFile(v.ad, uint64(data.Ino), StExists|EvtRemoved)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		drain(s)
		if err := v.fs.Rename("/data/f", "/outside/f"); err != nil {
			t.Fatal(err)
		}
		items := drain(s)
		if len(items) != 3 {
			t.Fatalf("move-out items = %d, want 3", len(items))
		}
		for _, it := range items {
			if !it.Flags.Has(EvtRemoved) || it.Flags.Has(StExists) {
				t.Errorf("move-out item flags = %v", it.Flags)
			}
		}
		// Future events for the moved-out file are suppressed.
		v.cache.RemoveFile(1, uint64(f.Ino))
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if items := drain(s); len(items) != 0 {
			t.Errorf("moved-out file still tracked: %d items", len(items))
		}
	})
}

func TestDirRenameResetsBitmaps(t *testing.T) {
	v := newEnv(256)
	v.fs.MkdirAll("/data/sub")
	fDone := v.mustPopulate(t, "/data/sub/done", 2)
	fPend := v.mustPopulate(t, "/data/sub/pending", 2)
	data, _ := v.fs.Lookup("/data")
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterFile(v.ad, uint64(data.Ino), StExists)
		if err := v.fs.ReadFile(p, fDone.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if err := v.fs.ReadFile(p, fPend.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		drain(s)
		s.SetDone(uint64(fDone.Ino)) // processed: both bits set
		if err := v.fs.Rename("/data/sub", "/data/renamed"); err != nil {
			t.Fatal(err)
		}
		// Processed file keeps its done bit; the pending file must be
		// re-checked (relevant cleared).
		if !s.CheckDone(uint64(fDone.Ino)) {
			t.Error("processed file lost done bit on dir rename")
		}
		if s.relevant.Test(uint64(fPend.Ino)) {
			t.Error("pending file kept relevant bit on dir rename")
		}
		// Touching the pending file again re-establishes relevance: the
		// page removals are tracked and delivered (fetched separately —
		// removing and re-reading between fetches would cancel out).
		v.cache.RemoveFile(1, uint64(fPend.Ino))
		removedItems := drain(s)
		if len(removedItems) != 2 {
			t.Fatalf("removal items = %d, want 2 (file re-tracked)", len(removedItems))
		}
		for _, it := range removedItems {
			if it.ID != uint64(fPend.Ino) || it.Flags.Has(StExists) {
				t.Errorf("removal item = %+v", it)
			}
		}
		if err := v.fs.ReadFile(p, fPend.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, it := range drain(s) {
			if it.ID == uint64(fPend.Ino) && it.Flags.Has(StExists) {
				found = true
			}
		}
		if !found {
			t.Error("pending file not re-tracked after rename")
		}
	})
}

func TestQueueLimitDropsEvents(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 16)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, EvtAdded)
		s.MaxItems = 4
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if s.QueueLen() != 4 {
			t.Errorf("QueueLen = %d, want 4", s.QueueLen())
		}
		if s.Dropped != 12 {
			t.Errorf("Dropped = %d, want 12", s.Dropped)
		}
		items := drain(s)
		if len(items) != 4 {
			t.Errorf("fetched = %d", len(items))
		}
	})
}

func TestDescriptorBoundsForStateSessions(t *testing.T) {
	v := newEnv(64)
	f := v.mustPopulate(t, "/f", 32)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, StExists)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		drain(s)
		// All pages reported as existing: descriptors must persist (they
		// record the reported state), bounded by cached pages.
		if got := v.d.Stats().CurDescs; got != 32 {
			t.Errorf("CurDescs = %d, want 32 (state sessions keep them)", got)
		}
		// Remove + fetch: state returns to default, descriptors free.
		v.cache.RemoveFile(1, uint64(f.Ino))
		drain(s)
		if got := v.d.Stats().CurDescs; got != 0 {
			t.Errorf("CurDescs = %d after remove+fetch, want 0", got)
		}
		if v.d.MemBytes() < 0 {
			t.Error("MemBytes negative")
		}
	})
}

func TestCloseReleasesDescriptors(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 8)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, StExists)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if v.d.Stats().CurDescs == 0 {
			t.Fatal("no descriptors allocated")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if got := v.d.Stats().CurDescs; got != 0 {
			t.Errorf("CurDescs = %d after Close", got)
		}
		if n := s.FetchInto(make([]Item, 4)); n != 0 {
			t.Errorf("fetch on closed session = %d", n)
		}
	})
}

func TestTwoSessionsIndependentFlags(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 4)
	v.in(t, func(p *sim.Proc) {
		s1, _ := v.d.RegisterBlock(v.ad, EvtAdded)
		s2, _ := v.d.RegisterBlock(v.ad, EvtAdded)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		// s1 fetches; s2's pending events must be unaffected.
		if got := len(drain(s1)); got != 4 {
			t.Fatalf("s1 items = %d", got)
		}
		if got := len(drain(s2)); got != 4 {
			t.Fatalf("s2 items = %d", got)
		}
	})
}

func TestMaskString(t *testing.T) {
	if got := (EvtAdded | StExists).String(); got != "Added|Exists" {
		t.Errorf("String = %q", got)
	}
	if Mask(0).String() != "none" {
		t.Error("zero mask string")
	}
}

func TestDuetString(t *testing.T) {
	v := newEnv(64)
	if v.d.String() == "" {
		t.Error("empty String()")
	}
}
