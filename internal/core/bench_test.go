package core

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Micro-benchmarks for the hook and fetch hot paths — the real-CPU costs
// behind the Figure 9 overhead numbers.

type benchEnv struct {
	e    *sim.Engine
	fs   *cowfs.FS
	c    *pagecache.Cache
	d    *Duet
	sess *Session
	pgs  []*pagecache.Page
}

func newBenchEnv(b *testing.B, mask Mask) *benchEnv {
	b.Helper()
	e := sim.New(1)
	disk := storage.NewDisk(e, "sda", storage.DefaultSSD(1<<16), newFIFO())
	c := pagecache.New(e, pagecache.DefaultConfig(1<<14))
	fs := cowfs.New(e, 1, disk, c)
	d := New(c)
	ad := AttachCow(d, fs)
	f, err := fs.PopulateFile("/f", 1<<12, 1, e.DeriveRand("pop"))
	if err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{e: e, fs: fs, c: c, d: d}
	e.Go("setup", func(p *sim.Proc) {
		defer e.Stop()
		if err := fs.ReadFile(p, f.Ino, storage.ClassNormal, "b"); err != nil {
			b.Error(err)
			return
		}
		c.IterateFile(1, uint64(f.Ino), func(pg *pagecache.Page) bool {
			env.pgs = append(env.pgs, pg)
			return true
		})
		sess, err := d.RegisterBlock(ad, mask)
		if err != nil {
			b.Error(err)
			return
		}
		env.sess = sess
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return env
}

func BenchmarkHookEventDelivery(b *testing.B) {
	env := newBenchEnv(b, EvtDirtied|EvtFlushed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.d.PageEvent(pagecache.EventDirtied, env.pgs[i%len(env.pgs)])
	}
}

func BenchmarkHookStateDelivery(b *testing.B) {
	env := newBenchEnv(b, StExists|StModified)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.d.PageEvent(pagecache.EventDirtied, env.pgs[i%len(env.pgs)])
	}
}

func BenchmarkFetchDrain(b *testing.B) {
	env := newBenchEnv(b, EventBits)
	buf := make([]Item, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.d.PageEvent(pagecache.EventDirtied, env.pgs[i%len(env.pgs)])
		if i%256 == 255 {
			for env.sess.FetchInto(buf) == len(buf) {
			}
		}
	}
}

func BenchmarkSetDoneCheckDone(b *testing.B) {
	env := newBenchEnv(b, EventBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % (1 << 20))
		env.sess.SetDone(id)
		if !env.sess.CheckDone(id) {
			b.Fatal("done bit lost")
		}
		env.sess.UnsetDone(id)
	}
}
