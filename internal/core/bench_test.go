package core

import (
	"testing"

	"duet/internal/cowfs"
	"duet/internal/pagecache"
	"duet/internal/sim"
	"duet/internal/storage"
)

// Micro-benchmarks for the hook and fetch hot paths — the real-CPU costs
// behind the Figure 9 overhead numbers.

type benchEnv struct {
	e    *sim.Engine
	fs   *cowfs.FS
	c    *pagecache.Cache
	d    *Duet
	sess *Session
	pgs  []*pagecache.Page
}

func newBenchEnv(b *testing.B, mask Mask) *benchEnv {
	b.Helper()
	e := sim.New(1)
	disk := storage.NewDisk(e, "sda", storage.DefaultSSD(1<<16), newFIFO())
	c := pagecache.New(e, pagecache.DefaultConfig(1<<14))
	fs := cowfs.New(e, 1, disk, c)
	d := New(c)
	ad := AttachCow(d, fs)
	f, err := fs.PopulateFile("/f", 1<<12, 1, e.DeriveRand("pop"))
	if err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{e: e, fs: fs, c: c, d: d}
	e.Go("setup", func(p *sim.Proc) {
		defer e.Stop()
		if err := fs.ReadFile(p, f.Ino, storage.ClassNormal, "b"); err != nil {
			b.Error(err)
			return
		}
		c.IterateFile(1, uint64(f.Ino), func(pg *pagecache.Page) bool {
			env.pgs = append(env.pgs, pg)
			return true
		})
		sess, err := d.RegisterBlock(ad, mask)
		if err != nil {
			b.Error(err)
			return
		}
		env.sess = sess
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return env
}

func BenchmarkHookEventDelivery(b *testing.B) {
	env := newBenchEnv(b, EvtDirtied|EvtFlushed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.d.PageEvent(pagecache.EventDirtied, env.pgs[i%len(env.pgs)])
	}
}

func BenchmarkHookStateDelivery(b *testing.B) {
	env := newBenchEnv(b, StExists|StModified)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.d.PageEvent(pagecache.EventDirtied, env.pgs[i%len(env.pgs)])
	}
}

func BenchmarkFetchDrain(b *testing.B) {
	env := newBenchEnv(b, EventBits)
	buf := make([]Item, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.d.PageEvent(pagecache.EventDirtied, env.pgs[i%len(env.pgs)])
		if i%256 == 255 {
			for env.sess.FetchInto(buf) == len(buf) {
			}
		}
	}
}

func BenchmarkSetDoneCheckDone(b *testing.B) {
	env := newBenchEnv(b, EventBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % (1 << 20))
		env.sess.SetDone(id)
		if !env.sess.CheckDone(id) {
			b.Fatal("done bit lost")
		}
		env.sess.UnsetDone(id)
	}
}

// newMultiEnv registers n block-task sessions (0 is the baseline: hook
// attached, nobody listening — the configuration every non-Duet
// experiment run pays for).
func newMultiEnv(b *testing.B, n int, mask Mask) (*benchEnv, []*Session) {
	b.Helper()
	env := newBenchEnv(b, mask)
	sessions := []*Session{env.sess}
	if n == 0 {
		env.sess.Close()
		sessions = nil
	}
	for len(sessions) < n {
		sess, err := env.d.RegisterBlock(AttachCow(env.d, env.fs), mask)
		if err != nil {
			b.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	return env, sessions
}

// benchCacheEmit cycles one page through insert+remove via the cache, so
// events travel the full emit path including the interest-mask check.
func benchCacheEmit(b *testing.B, nSessions int) {
	env, sessions := newMultiEnv(b, nSessions, EventBits)
	key := pagecache.PageKey{FS: 1, Ino: 1 << 30, Index: 0}
	buf := make([]Item, 256)
	env.e.Go("bench", func(p *sim.Proc) {
		defer env.e.Stop()
		for i := 0; i < 256; i++ {
			env.c.Insert(p, key, 1)
			env.c.Remove(key)
		}
		drain := func() {
			for _, s := range sessions {
				for s.FetchInto(buf) == len(buf) {
				}
			}
		}
		drain()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.c.Insert(p, key, 1)
			env.c.Remove(key)
			if i%128 == 127 {
				drain()
			}
		}
		b.StopTimer()
	})
	if err := env.e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCacheEmit0Sessions(b *testing.B) { benchCacheEmit(b, 0) }
func BenchmarkCacheEmit1Session(b *testing.B)  { benchCacheEmit(b, 1) }
func BenchmarkCacheEmit4Sessions(b *testing.B) { benchCacheEmit(b, 4) }

// TestEmitZeroSessionsAllocFree pins the baseline contract: with Duet
// attached but no session registered, a page's insert/remove round trip
// through the cache performs zero allocations and never reaches the
// hook's fan-out (the interest mask filters the dispatch).
func TestEmitZeroSessionsAllocFree(t *testing.T) {
	e := sim.New(1)
	disk := storage.NewDisk(e, "sda", storage.DefaultSSD(1<<16), newFIFO())
	c := pagecache.New(e, pagecache.DefaultConfig(1<<12))
	fs := cowfs.New(e, 1, disk, c)
	d := New(c)
	_ = AttachCow(d, fs)
	key := pagecache.PageKey{FS: 1, Ino: 42, Index: 0}
	var avg float64
	e.Go("alloc-test", func(p *sim.Proc) {
		defer e.Stop()
		for i := 0; i < 64; i++ {
			c.Insert(p, key, 1)
			c.Remove(key)
		}
		avg = testing.AllocsPerRun(200, func() {
			c.Insert(p, key, 1)
			c.Remove(key)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("zero-session emit allocates %.1f allocs/op, want 0", avg)
	}
	if got := d.Stats().HookCalls; got != 0 {
		t.Errorf("HookCalls = %d with no sessions, want 0", got)
	}
	if f := c.Stats().EventsFiltered; f == 0 {
		t.Error("no events were filtered by the interest mask")
	}
}

// TestDescriptorRecycling pins the descriptor free list: a steady
// deliver-then-fetch cycle must reuse freed itemDescs instead of
// allocating new ones.
func TestDescriptorRecycling(t *testing.T) {
	e := sim.New(1)
	disk := storage.NewDisk(e, "sda", storage.DefaultSSD(1<<16), newFIFO())
	c := pagecache.New(e, pagecache.DefaultConfig(1<<12))
	fs := cowfs.New(e, 1, disk, c)
	d := New(c)
	ad := AttachCow(d, fs)
	sess, err := d.RegisterBlock(ad, EventBits)
	if err != nil {
		t.Fatal(err)
	}
	key := pagecache.PageKey{FS: 1, Ino: 42, Index: 0}
	buf := make([]Item, 16)
	var avg float64
	e.Go("alloc-test", func(p *sim.Proc) {
		defer e.Stop()
		for i := 0; i < 64; i++ {
			c.Insert(p, key, 1)
			c.Remove(key)
			sess.FetchInto(buf)
		}
		avg = testing.AllocsPerRun(200, func() {
			c.Insert(p, key, 1)
			c.Remove(key)
			sess.FetchInto(buf)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("deliver+fetch cycle allocates %.1f allocs/op, want 0", avg)
	}
	st := d.Stats()
	if st.DescFrees == 0 || st.CurDescs != 0 {
		t.Errorf("descriptor accounting: frees=%d cur=%d", st.DescFrees, st.CurDescs)
	}
}
