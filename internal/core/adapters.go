package core

import (
	"duet/internal/cowfs"
	"duet/internal/lfs"
	"duet/internal/pagecache"
)

// Adapters binding the simulated filesystems to Duet's FSAdapter
// interface, including the VFS bridge that forwards rename events (§4.1).

// CowAdapter adapts a cowfs filesystem.
type CowAdapter struct {
	FS *cowfs.FS
}

// AttachCow wires a cowfs filesystem into Duet: it registers the adapter
// and hooks the VFS layer so renames reach FileMoved.
func AttachCow(d *Duet, fs *cowfs.FS) *CowAdapter {
	a := &CowAdapter{FS: fs}
	d.AttachFS(a)
	fs.AddVFSHook(&cowVFSBridge{d: d, fsid: fs.ID()})
	return a
}

// FSID implements FSAdapter.
func (a *CowAdapter) FSID() pagecache.FSID { return a.FS.ID() }

// Fibmap implements FSAdapter.
func (a *CowAdapter) Fibmap(ino, idx uint64) (int64, bool) {
	return a.FS.Fibmap(cowfs.Ino(ino), int64(idx))
}

// Within implements FSAdapter.
func (a *CowAdapter) Within(ino, root uint64) (string, bool) {
	return a.FS.Within(cowfs.Ino(ino), cowfs.Ino(root))
}

// IsDir implements FSAdapter.
func (a *CowAdapter) IsDir(ino uint64) bool {
	i, ok := a.FS.Inode(cowfs.Ino(ino))
	return ok && i.Dir
}

// DeviceBlocks implements FSAdapter.
func (a *CowAdapter) DeviceBlocks() int64 { return a.FS.Disk().Blocks() }

type cowVFSBridge struct {
	d    *Duet
	fsid pagecache.FSID
}

func (b *cowVFSBridge) Moved(ino cowfs.Ino, isDir bool, oldParent, newParent cowfs.Ino) {
	b.d.FileMoved(b.fsid, uint64(ino), isDir, uint64(oldParent), uint64(newParent))
}

// LFSAdapter adapts an lfs filesystem. The namespace is flat, so the
// whole filesystem acts as one registered directory (inode 0 stands for
// the root).
type LFSAdapter struct {
	FS *lfs.FS
}

// AttachLFS wires an lfs filesystem into Duet.
func AttachLFS(d *Duet, fs *lfs.FS) *LFSAdapter {
	a := &LFSAdapter{FS: fs}
	d.AttachFS(a)
	return a
}

// LFSRoot is the pseudo-inode representing the flat namespace root.
const LFSRoot uint64 = 0

// FSID implements FSAdapter.
func (a *LFSAdapter) FSID() pagecache.FSID { return a.FS.ID() }

// Fibmap implements FSAdapter.
func (a *LFSAdapter) Fibmap(ino, idx uint64) (int64, bool) {
	return a.FS.Fibmap(lfs.Ino(ino), int64(idx))
}

// Within implements FSAdapter: every file is under the flat root.
func (a *LFSAdapter) Within(ino, root uint64) (string, bool) {
	if root != LFSRoot {
		return "", false
	}
	if ino == LFSRoot {
		return "", true
	}
	i, ok := a.FS.Inode(lfs.Ino(ino))
	if !ok {
		return "", false
	}
	return i.Name, true
}

// IsDir implements FSAdapter: only the pseudo-root is a directory.
func (a *LFSAdapter) IsDir(ino uint64) bool { return ino == LFSRoot }

// DeviceBlocks implements FSAdapter.
func (a *LFSAdapter) DeviceBlocks() int64 { return a.FS.Disk().Blocks() }
