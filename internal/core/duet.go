package core

import (
	"errors"
	"fmt"
	"time"

	"duet/internal/pagecache"
)

// Sentinel errors.
var (
	ErrTooManySessions = errors.New("duet: session limit reached")
	ErrNoSession       = errors.New("duet: session closed")
	ErrNotCached       = errors.New("duet: file no longer cached")
	ErrUnknownFS       = errors.New("duet: filesystem not attached")
	ErrNotDir          = errors.New("duet: registered path is not a directory")
)

// MaxSessions is the default maximum number of concurrent sessions (the
// module-load-time N of §4.2; it sizes the merged descriptor flag array).
const MaxSessions = 16

// FSAdapter is what Duet needs from a filesystem: the FIBMAP translation
// for block tasks, parent-walking for file-task relevance, and path
// resolution for GetPath. cowfs and lfs provide implementations (see
// adapters.go).
type FSAdapter interface {
	// FSID identifies the filesystem in the page cache.
	FSID() pagecache.FSID
	// Fibmap translates (inode, page index) to a device block; ok is
	// false when the page has no on-device location yet.
	Fibmap(ino uint64, idx uint64) (block int64, ok bool)
	// Within reports whether ino is inside (or is) the directory root,
	// returning its relative path.
	Within(ino, root uint64) (rel string, ok bool)
	// IsDir reports whether the inode is a directory.
	IsDir(ino uint64) bool
	// DeviceBlocks is the capacity of the backing device.
	DeviceBlocks() int64
}

// itemKey identifies a page in the global descriptor table.
type itemKey struct {
	fs  pagecache.FSID
	ino uint64
	idx uint64
}

type fileKey struct {
	fs  pagecache.FSID
	ino uint64
}

// itemDesc is the merged item descriptor of §4.2: one per page for all
// sessions, with a per-session flag byte.
//
// Flag byte layout: bits 0-3 are pending event bits (EvtAdded..EvtFlushed);
// bit 4-5 are the page's current Exists/Modified state; bits 6-7 are the
// state as of the session's last fetch. A state notification is pending
// when current != reported, which gives the paper's cancellation
// semantics (add + remove between fetches = no notification).
type itemDesc struct {
	key    itemKey
	flags  [MaxSessions]uint8
	queued uint32 // per-session: descriptor is in the session's fetch queue

	nextFree *itemDesc // free-list link while the descriptor is unused
}

const (
	fCurExists  = 1 << 4
	fCurModif   = 1 << 5
	fRepExists  = 1 << 6
	fRepModif   = 1 << 7
	fEventBits  = 0x0f
	curShift    = 4
	repShift    = 6
	twoStateBit = 0x3
)

// pendingFor reports whether the descriptor holds undelivered information
// for a session with the given mask.
func pendingFor(f uint8, mask Mask) bool {
	if f&fEventBits&uint8(mask) != 0 {
		return true
	}
	st := uint8(mask>>4) & twoStateBit
	cur := (f >> curShift) & twoStateBit
	rep := (f >> repShift) & twoStateBit
	return (cur^rep)&st != 0
}

// needsDesc reports whether the descriptor must stay allocated for a
// session: it has pending events, or (for state subscribers) it records a
// non-default current or reported state (§4.2's 2× page-cache bound).
func needsDesc(f uint8, mask Mask) bool {
	if f&fEventBits != 0 {
		return true
	}
	st := uint8(mask>>4) & twoStateBit
	cur := (f >> curShift) & twoStateBit
	rep := (f >> repShift) & twoStateBit
	return (cur|rep)&st != 0
}

// Stats tracks framework activity and cost.
type Stats struct {
	HookCalls     int64
	HookNanos     int64 // real CPU nanoseconds spent in the page hook
	FetchCalls    int64
	FetchNanos    int64 // real CPU nanoseconds spent in Fetch
	ItemsFetched  int64
	EventsDropped int64 // dropped due to per-session descriptor limits
	// DegradedSessions counts sessions that entered lossy (degraded)
	// mode because their bounded fetch queue overflowed.
	DegradedSessions int64
	DescAllocs       int64
	DescFrees        int64
	CurDescs         int64
	PeakDescs        int64
}

// Duet is the framework instance for one machine. It implements
// pagecache.Hook.
type Duet struct {
	cache    *pagecache.Cache
	fses     map[pagecache.FSID]FSAdapter
	sessions [MaxSessions]*Session
	active   []*Session // active sessions in id order
	// globalMask is the union of active session masks (§4.1's global
	// filtering: maintained on register/deregister so the page cache can
	// skip hook dispatch for event types no session cares about).
	globalMask Mask
	table      descTable
	stats      Stats
	obs        *duetObs // nil unless observability is on (see obs.go)
	// MeasureCPU enables real-time accounting of hook and fetch cost
	// (used by the Figure 9 overhead experiment). Off by default: calling
	// time.Now twice per page event is itself measurable.
	MeasureCPU bool
}

// New creates a Duet instance hooked into the page cache.
func New(cache *pagecache.Cache) *Duet {
	d := &Duet{
		cache: cache,
		fses:  make(map[pagecache.FSID]FSAdapter),
	}
	cache.AddHook(d)
	return d
}

// AttachFS makes a filesystem known to Duet. Pages of unattached
// filesystems are ignored.
func (d *Duet) AttachFS(a FSAdapter) { d.fses[a.FSID()] = a }

// Stats returns live statistics.
func (d *Duet) Stats() *Stats { return &d.stats }

// table holds the merged item descriptors; descByFile indexes them per
// file for done-marking and move handling. Freed descriptors are
// recycled through a free list, so the event hot path stops allocating
// once the table has reached its high-water mark.
type descTable struct {
	byKey    descTab
	byFile   fdescTab
	freeList *itemDesc
	// freeMaps recycles emptied per-file index maps: a file whose last
	// descriptor is freed would otherwise force a map allocation on its
	// next event. Bounded so a burst of distinct files cannot pin memory.
	freeMaps []map[uint64]*itemDesc
}

const maxFreeMaps = 32

func (t *descTable) get(k itemKey) *itemDesc { return t.byKey.get(k) }

func (t *descTable) getOrCreate(k itemKey, st *Stats) *itemDesc {
	if desc := t.byKey.get(k); desc != nil {
		return desc
	}
	desc := t.freeList
	if desc != nil {
		t.freeList = desc.nextFree
		desc.nextFree = nil
		desc.key = k
	} else {
		desc = &itemDesc{key: k}
	}
	t.byKey.put(k, desc)
	fk := fileKey{k.fs, k.ino}
	m := t.byFile.get(fk)
	if m == nil {
		if n := len(t.freeMaps); n > 0 {
			m = t.freeMaps[n-1]
			t.freeMaps[n-1] = nil
			t.freeMaps = t.freeMaps[:n-1]
		} else {
			m = make(map[uint64]*itemDesc)
		}
		t.byFile.put(fk, m)
	}
	m[k.idx] = desc
	st.DescAllocs++
	st.CurDescs++
	if st.CurDescs > st.PeakDescs {
		st.PeakDescs = st.CurDescs
	}
	return desc
}

func (t *descTable) free(desc *itemDesc, st *Stats) {
	t.byKey.del(desc.key)
	fk := fileKey{desc.key.fs, desc.key.ino}
	if m := t.byFile.get(fk); m != nil {
		delete(m, desc.key.idx)
		if len(m) == 0 {
			t.byFile.del(fk)
			if len(t.freeMaps) < maxFreeMaps {
				t.freeMaps = append(t.freeMaps, m)
			}
		}
	}
	st.DescFrees++
	st.CurDescs--
	*desc = itemDesc{nextFree: t.freeList}
	t.freeList = desc
}

// ensureTable returns the descriptor table (its zero value is ready).
func (d *Duet) ensureTable() *descTable {
	return &d.table
}

// maybeFree releases the descriptor if no active session needs it.
func (d *Duet) maybeFree(desc *itemDesc) {
	if desc.queued != 0 {
		return
	}
	for _, s := range d.active {
		if needsDesc(desc.flags[s.id], s.mask) {
			return
		}
	}
	d.table.free(desc, &d.stats)
}

// EventInterest implements pagecache.InterestReporter. The cache
// consults this to skip hook dispatch entirely when nothing is
// listening — the paper's §4.1 global filtering, performed before any
// per-task work. With no active session the interest is empty, so the
// baseline configurations of every experiment pay nothing for the
// installed hook. While any session is active Duet asks for all four
// event types: even a session whose mask selects only a subset still
// observes every event for its descriptor state bookkeeping (current
// Exists/Modified bits must track all transitions) and delivery
// accounting, so type-level filtering cannot be applied above it.
func (d *Duet) EventInterest() uint8 {
	if d.globalMask == 0 {
		return 0
	}
	return pagecache.AllEvents
}

var _ pagecache.InterestReporter = (*Duet)(nil)

// refreshGlobalMask recomputes the session-mask union and pushes the
// derived event interest into the page cache. Called on session
// register/deregister.
func (d *Duet) refreshGlobalMask() {
	d.globalMask = 0
	for _, s := range d.active {
		d.globalMask |= s.mask
	}
	d.cache.RefreshInterest()
}

// PageEvent implements pagecache.Hook: it fans the event out to every
// interested session, as §4.1 describes.
func (d *Duet) PageEvent(ev pagecache.EventType, pg *pagecache.Page) {
	if len(d.active) == 0 {
		return
	}
	var t0 time.Time
	if d.MeasureCPU {
		t0 = time.Now()
	}
	d.stats.HookCalls++
	for _, s := range d.active {
		s.deliver(ev, pg.Key, pg.Dirty)
	}
	if d.MeasureCPU {
		d.stats.HookNanos += time.Since(t0).Nanoseconds()
	}
}

// KeepPage implements pagecache.EvictionAdvisor: a page whose descriptor
// still sits in some session's fetch queue carries a hint no task has
// consumed yet, so reclaim should prefer other victims. Enable with
// cache.SetAdvisor(duet) — the informed-cache-replacement extension the
// paper leaves as future work (§2).
func (d *Duet) KeepPage(pg *pagecache.Page) bool {
	desc := d.table.get(itemKey{pg.Key.FS, pg.Key.Ino, pg.Key.Index})
	return desc != nil && desc.queued != 0
}

var _ pagecache.EvictionAdvisor = (*Duet)(nil)

// MemBytes estimates Duet's memory footprint: descriptors plus session
// bitmaps (the quantities §6.4 reports).
func (d *Duet) MemBytes() int {
	const descSize = 16 /* key */ + MaxSessions + 16 /* map node overhead */
	n := int(d.stats.CurDescs) * descSize
	for _, s := range d.active {
		n += s.done.MemBytes()
		if s.relevant != nil {
			n += s.relevant.MemBytes()
		}
	}
	return n
}

// --- move / rename handling (§4.1) ----------------------------------------

// FileMoved must be called by the filesystem's VFS layer after a rename.
// Duet updates each file session's tracking: files moved into the
// registered directory get descriptors initialized from their cached
// pages; files moved out get Removed notifications and stop being
// tracked; directory renames reset the relevance/done bitmaps except for
// fully processed files.
func (d *Duet) FileMoved(fs pagecache.FSID, ino uint64, isDir bool, oldParent, newParent uint64) {
	for _, s := range d.active {
		if s.kind != fileTask || s.fsid != fs {
			continue
		}
		s.handleMove(ino, isDir, oldParent, newParent)
	}
}

var _ pagecache.Hook = (*Duet)(nil)

// String summarises the instance for debugging.
func (d *Duet) String() string {
	return fmt.Sprintf("duet{sessions=%d descs=%d}", len(d.active), d.stats.CurDescs)
}
