package core

import (
	"testing"

	"duet/internal/sim"
	"duet/internal/storage"
)

// A session whose bounded queue overflows turns lossy and reports a
// conservative ID range covering the dropped notifications — the
// degraded-mode contract tasks compensate through (re-scanning the
// range instead of trusting their event-derived bookkeeping).
func TestDegradedSessionReportsDropRange(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 16)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, EvtAdded)
		s.MaxItems = 4
		if s.Degraded() {
			t.Fatal("fresh session already degraded")
		}
		if _, _, ok := s.TakeDegradedRange(); ok {
			t.Fatal("non-degraded session returned a range")
		}

		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if s.Dropped == 0 {
			t.Fatal("no drops; test setup broken")
		}
		if !s.Degraded() {
			t.Fatal("session with drops not degraded")
		}
		if got := v.d.Stats().DegradedSessions; got != 1 {
			t.Errorf("DegradedSessions = %d, want 1", got)
		}

		lo, hi, ok := s.TakeDegradedRange()
		if !ok {
			t.Fatal("degraded session returned no range")
		}
		if lo > hi {
			t.Fatalf("inverted range [%d, %d]", lo, hi)
		}
		// The range must cover every dropped block: drops happen after the
		// first MaxItems enqueues, so collect the file's mapped blocks and
		// check the dropped tail is inside [lo, hi].
		var min, max uint64
		first := true
		for i := int64(0); i < f.SizePg; i++ {
			blk, mapped := v.fs.Fibmap(f.Ino, i)
			if !mapped {
				continue
			}
			b := uint64(blk)
			if first || b < min {
				min = b
			}
			if first || b > max {
				max = b
			}
			first = false
		}
		if lo < min || hi > max {
			t.Errorf("range [%d, %d] outside the file's blocks [%d, %d]", lo, hi, min, max)
		}

		// Take consumes: the session is trusted again until the next drop.
		if s.Degraded() {
			t.Error("session still degraded after TakeDegradedRange")
		}
		if _, _, ok := s.TakeDegradedRange(); ok {
			t.Error("second take returned a range")
		}

		// A fresh overflow re-enters degraded mode and counts again.
		v.cache.RemoveFile(1, uint64(f.Ino))
		drain(s)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		if !s.Degraded() {
			t.Error("second overflow did not degrade")
		}
		if got := v.d.Stats().DegradedSessions; got != 2 {
			t.Errorf("DegradedSessions = %d, want 2", got)
		}
	})
}

// Sessions whose queues never overflow stay trusted.
func TestUndroppedSessionStaysTrusted(t *testing.T) {
	v := newEnv(256)
	f := v.mustPopulate(t, "/f", 16)
	v.in(t, func(p *sim.Proc) {
		s, _ := v.d.RegisterBlock(v.ad, EvtAdded)
		if err := v.fs.ReadFile(p, f.Ino, storage.ClassNormal, "w"); err != nil {
			t.Fatal(err)
		}
		drain(s)
		if s.Degraded() || s.Dropped != 0 {
			t.Errorf("lossless session degraded (dropped %d)", s.Dropped)
		}
		if got := v.d.Stats().DegradedSessions; got != 0 {
			t.Errorf("DegradedSessions = %d, want 0", got)
		}
	})
}
